package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// VtimeCtx flags blocking virtual-time primitives reaching code that runs
// in scheduler context. vtime's blocking calls (Sem.Acquire, Event.Wait,
// Queue.Pop, Scheduler.Sleep, ...) park the calling task and panic with
// "called outside a running task" when invoked from a timer callback or a
// delivery hook — contexts where there IS no task to park. The analyzer
// seeds a may-block set with those primitives (and vtime's internal
// cur/switchOut), propagates it over the statically resolvable call graph
// of every loaded package, and then checks the three places the simulator
// installs scheduler-context callbacks:
//
//   - function arguments to Scheduler.At / Scheduler.After (timer callbacks)
//   - function arguments to Event.OnFire (fire subscribers)
//   - assignments to netsim Endpoint.OnDeliver (packet delivery hooks)
//
// Calls through interfaces and non-trivial function values are not
// resolved — a task body stored in a variable and later passed to At will
// slip through. The check is sound for the direct styles the codebase
// uses; it is a tripwire, not a proof.
var VtimeCtx = &Analyzer{
	Name: "vtimectx",
	Doc:  "vtime-blocking calls must not be reachable from scheduler-context callbacks",
	Run:  runVtimeCtx,
}

const netsimPath = "mpichmad/internal/netsim"

// blockSeeds are the vtime functions that require a running task, keyed
// by funcKey form "pkgpath.Type.Method" / "pkgpath.Func". Seeding the
// public primitives (not just cur/switchOut) keeps the analysis correct
// when vtime itself is outside the analyzed package set and only its
// export data is visible.
var blockSeeds = map[string]bool{
	vtimePath + ".Scheduler.cur":       true,
	vtimePath + ".Scheduler.switchOut": true,
	vtimePath + ".Scheduler.Sleep":     true,
	vtimePath + ".Scheduler.Yield":     true,
	vtimePath + ".Sem.Acquire":         true,
	vtimePath + ".Mutex.Lock":          true,
	vtimePath + ".Event.Wait":          true,
	vtimePath + ".Queue.Pop":           true,
	vtimePath + ".Queue.PopTimeout":    true,
}

// entryMethods are the scheduler-context registration points: calls to
// these methods must only receive non-blocking function arguments.
var entryMethods = map[string]string{
	vtimePath + ".Scheduler.At":    "vtime timer callback (Scheduler.At)",
	vtimePath + ".Scheduler.After": "vtime timer callback (Scheduler.After)",
	vtimePath + ".Event.OnFire":    "vtime fire subscriber (Event.OnFire)",
}

// funcNode is one function (or function literal) in the call graph.
type funcNode struct {
	key     string
	pos     token.Pos
	calls   []string // funcKeys of statically resolved callees
	blocks  bool
	witness string // one blocking callee, for the message
}

// blockGraph is the whole-program may-block analysis result.
type blockGraph struct {
	nodes map[string]*funcNode
}

// funcKey names a function object package-qualified and receiver-
// qualified, stable across source-loaded and export-data-loaded views of
// the same function: "pkg/path.Name" or "pkg/path.Recv.Name". Generic
// instantiations collapse onto their origin.
func funcKey(f *types.Func) string {
	f = f.Origin()
	sig, ok := f.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		if named, isNamed := t.(*types.Named); isNamed && named.Obj().Pkg() != nil {
			return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + f.Name()
		}
		return "" // interface method or unusual receiver: unresolvable
	}
	if f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path() + "." + f.Name()
}

// litKey names a function literal by position.
func litKey(fset *token.FileSet, lit *ast.FuncLit) string {
	return "lit@" + fset.Position(lit.Pos()).String()
}

// calleeKey statically resolves a call expression's target, "" if it
// cannot (interface dispatch, plain function values).
func calleeKey(pass *Pass, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := pass.Pkg.Info.Uses[fun].(*types.Func); ok {
			return funcKey(f)
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.Pkg.Info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				if _, isIface := sel.Recv().Underlying().(*types.Interface); isIface {
					return "" // dynamic dispatch: blind spot by design
				}
				return funcKey(f)
			}
			return ""
		}
		if f, ok := pass.Pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return funcKey(f) // package-qualified call
		}
	case *ast.FuncLit:
		return litKey(pass.Fset, fun)
	}
	return ""
}

// funcExprKey resolves a function-valued expression (a callback argument
// or hook assignment) to a graph key, "" if unresolvable.
func funcExprKey(pass *Pass, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		return litKey(pass.Fset, e)
	case *ast.Ident:
		if f, ok := pass.Pkg.Info.Uses[e].(*types.Func); ok {
			return funcKey(f)
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.Pkg.Info.Selections[e]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return funcKey(f) // method value, e.g. ch.deliver
			}
		}
		if f, ok := pass.Pkg.Info.Uses[e.Sel].(*types.Func); ok {
			return funcKey(f)
		}
	}
	return ""
}

// buildBlockGraph scans every loaded package once and runs the may-block
// fixpoint.
func buildBlockGraph(prog *Program) *blockGraph {
	g := &blockGraph{nodes: make(map[string]*funcNode)}
	node := func(key string, pos token.Pos) *funcNode {
		n := g.nodes[key]
		if n == nil {
			n = &funcNode{key: key, pos: pos}
			g.nodes[key] = n
		}
		return n
	}

	for _, pkg := range prog.Pkgs {
		pass := &Pass{Prog: prog, Pkg: pkg, Fset: prog.Fset}
		for _, f := range pkg.Files {
			// Collect the direct calls of every function declaration and
			// literal. A stack tracks the innermost enclosing function.
			var stack []*funcNode
			var walk func(n ast.Node) bool
			walk = func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					var key string
					if obj, ok := pkg.Info.Defs[n.Name].(*types.Func); ok {
						key = funcKey(obj)
					}
					if key == "" || n.Body == nil {
						return false
					}
					fn := node(key, n.Pos())
					stack = append(stack, fn)
					ast.Inspect(n.Body, walk)
					stack = stack[:len(stack)-1]
					return false
				case *ast.FuncLit:
					fn := node(litKey(prog.Fset, n), n.Pos())
					stack = append(stack, fn)
					ast.Inspect(n.Body, walk)
					stack = stack[:len(stack)-1]
					return false
				case *ast.CallExpr:
					if len(stack) > 0 {
						if key := calleeKey(pass, n); key != "" {
							cur := stack[len(stack)-1]
							cur.calls = append(cur.calls, key)
						}
					}
				}
				return true
			}
			ast.Inspect(f, walk)
		}
	}

	// Fixpoint: a node blocks if it is a seed or calls a blocking node.
	for key := range blockSeeds {
		node(key, token.NoPos).blocks = true
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.nodes {
			if n.blocks {
				continue
			}
			for _, callee := range n.calls {
				target := g.nodes[callee]
				if (target != nil && target.blocks) || blockSeeds[callee] {
					n.blocks = true
					n.witness = callee
					changed = true
					break
				}
			}
		}
	}
	return g
}

// mayBlock reports whether key is in the may-block set, with a short
// call-chain witness for the diagnostic.
func (g *blockGraph) mayBlock(key string) (bool, string) {
	chain := key
	for hops := 0; hops < 20; hops++ {
		n := g.nodes[chain]
		if n == nil {
			return blockSeeds[chain], chain
		}
		if !n.blocks {
			return false, ""
		}
		if n.witness == "" {
			return true, chain
		}
		chain = n.witness
	}
	return true, chain
}

func runVtimeCtx(pass *Pass) []Diagnostic {
	if pass.Prog.blockers == nil {
		pass.Prog.blockers = buildBlockGraph(pass.Prog)
	}
	g := pass.Prog.blockers

	var out []Diagnostic
	check := func(e ast.Expr, context string) {
		key := funcExprKey(pass, e)
		if key == "" {
			return
		}
		if blocks, via := g.mayBlock(key); blocks {
			out = append(out, Diagnostic{Pos: e.Pos(), Message: fmt.Sprintf(
				"%s runs in scheduler context but may block in virtual time (reaches %s)",
				context, via)})
		}
	}

	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				key := calleeKey(pass, n)
				context, isEntry := entryMethods[key]
				if !isEntry {
					return true
				}
				for _, arg := range n.Args {
					if tv, ok := pass.Pkg.Info.Types[arg]; ok {
						if _, isSig := tv.Type.Underlying().(*types.Signature); isSig {
							check(arg, context)
						}
					}
				}
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break
					}
					if isOnDeliver(pass, lhs) {
						check(n.Rhs[i], "netsim delivery hook (Endpoint.OnDeliver)")
					}
				}
			case *ast.CompositeLit:
				tv, ok := pass.Pkg.Info.Types[n]
				if !ok || !isNetsimEndpoint(tv.Type) {
					return true
				}
				for _, elt := range n.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "OnDeliver" {
							check(kv.Value, "netsim delivery hook (Endpoint.OnDeliver)")
						}
					}
				}
			}
			return true
		})
	}
	return out
}

// isOnDeliver reports whether lhs selects the OnDeliver field of a netsim
// Endpoint.
func isOnDeliver(pass *Pass, lhs ast.Expr) bool {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "OnDeliver" {
		return false
	}
	tv, ok := pass.Pkg.Info.Types[sel.X]
	if !ok {
		return false
	}
	t := tv.Type
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	return isNetsimEndpoint(t)
}

func isNetsimEndpoint(t types.Type) bool {
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Endpoint" &&
		named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == netsimPath
}
