package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Determinism enforces the simulator's "no wall clock, no real
// concurrency, no map-order effects" rules inside simulation packages
// (everything under internal/ except this linter, plus any file marked
// //madlint:simulation):
//
//   - time.Now/Sleep/After and friends are forbidden: the simulation runs
//     in virtual time (vtime) and a wall-clock read makes runs diverge.
//   - the global math/rand source is forbidden: randomness must flow from
//     an explicit seed (netsim.PRNG) so runs are bit-identical.
//   - raw `go` statements, sync.Mutex/RWMutex/WaitGroup/Cond and native
//     channels are forbidden outside vtime itself: all concurrency is
//     cooperative, mediated by the scheduler's run token.
//   - a `for range` over a map whose body drives the scheduler or I/O, or
//     collects elements without a subsequent sort in the same function,
//     leaks Go's randomized map order into simulation behavior.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock, global rand, raw concurrency and map-order effects in simulation code",
	Run:  runDeterminism,
}

const (
	modulePrefix = "mpichmad/internal/"
	lintPath     = "mpichmad/internal/lint"
	vtimePath    = "mpichmad/internal/vtime"
	tracePath    = "mpichmad/internal/trace"
)

// forbiddenTime are the time package functions that read or wait on the
// wall clock.
var forbiddenTime = map[string]bool{
	"Now": true, "Sleep": true, "After": true, "AfterFunc": true,
	"Tick": true, "NewTimer": true, "NewTicker": true, "Since": true,
	"Until": true,
}

// allowedRand are the math/rand package functions that construct explicit
// seeded generators rather than touching the global source.
var allowedRand = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

// forbiddenSync are the sync types that would bypass the vtime scheduler.
var forbiddenSync = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true, "Cond": true,
}

// riskyInRange are method names whose invocation from inside a map
// iteration orders scheduler or I/O side effects by Go's randomized map
// order: queue pushes, event fires, sends, task spawns, semaphore
// traffic, packing, output.
var riskyInRange = map[string]bool{
	"Push": true, "Fire": true, "Send": true, "At": true, "After": true,
	"Go": true, "GoDaemon": true, "Acquire": true, "Release": true,
	"Lock": true, "Unlock": true, "Wait": true, "Pop": true,
	"Pack": true, "EndPacking": true, "Compute": true, "Sleep": true,
	"Yield": true, "Printf": true, "Fprintf": true, "Println": true,
	"Fprintln": true, "WriteString": true,
}

func inSimScope(path string) bool {
	return strings.HasPrefix(path, modulePrefix) && !strings.HasPrefix(path, lintPath)
}

func runDeterminism(pass *Pass) []Diagnostic {
	var out []Diagnostic
	isVtime := pass.Pkg.Path == vtimePath
	for _, f := range pass.Pkg.Files {
		if !inSimScope(pass.Pkg.Path) && !markedSimulation(f) {
			continue
		}
		out = append(out, detFile(pass, f, isVtime)...)
	}
	return out
}

func detFile(pass *Pass, f *ast.File, isVtime bool) []Diagnostic {
	var out []Diagnostic
	report := func(pos token.Pos, format string, args ...interface{}) {
		out = append(out, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
	}

	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			obj := pass.Pkg.Info.Uses[n.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch p := obj.Pkg().Path(); {
			case p == "time" && forbiddenTime[obj.Name()]:
				report(n.Pos(), "time.%s reads the wall clock: simulation code runs in virtual time (use vtime)", obj.Name())
			case (p == "math/rand" || p == "math/rand/v2") && !allowedRand[obj.Name()]:
				if _, isFunc := obj.(*types.Func); isFunc {
					report(n.Pos(), "global math/rand.%s is seeded per process: use an explicitly seeded generator (netsim.PRNG)", obj.Name())
				}
			case p == "sync" && forbiddenSync[obj.Name()] && !isVtime:
				report(n.Pos(), "sync.%s bypasses the vtime scheduler: use vtime.Mutex/Sem/Event", obj.Name())
			}
		case *ast.GoStmt:
			if !isVtime {
				report(n.Pos(), "raw go statement escapes the scheduler's run token: use vtime Scheduler.Go/GoDaemon")
			}
		case *ast.ChanType:
			if !isVtime {
				report(n.Pos(), "native channel in simulation code: use vtime.Queue/Event")
			}
		case *ast.SendStmt:
			if !isVtime {
				report(n.Pos(), "native channel send in simulation code: use vtime.Queue/Event")
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !isVtime {
				report(n.Pos(), "native channel receive in simulation code: use vtime.Queue/Event")
			}
		case *ast.SelectStmt:
			if !isVtime {
				report(n.Pos(), "select over native channels in simulation code: use vtime primitives")
			}
		}
		return true
	})

	// Map-range checks need the enclosing function body as the scope in
	// which a collected slice may still be sorted.
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		bodies := []*ast.BlockStmt{fd.Body}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				bodies = append(bodies, lit.Body)
			}
			return true
		})
		for _, body := range bodies {
			out = append(out, detMapRanges(pass, body)...)
		}
	}
	return out
}

// detMapRanges flags map iterations in body (excluding nested function
// literals, which get their own scope) whose bodies have order-sensitive
// effects.
func detMapRanges(pass *Pass, body *ast.BlockStmt) []Diagnostic {
	var out []Diagnostic
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // separate scope, walked on its own
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.Pkg.Info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		out = append(out, detOneMapRange(pass, body, rng)...)
		return true
	})
	return out
}

func detOneMapRange(pass *Pass, scope *ast.BlockStmt, rng *ast.RangeStmt) []Diagnostic {
	var out []Diagnostic
	appended := make(map[types.Object]token.Pos)

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && riskyInRange[sel.Sel.Name] {
				if obj := pass.Pkg.Info.Uses[sel.Sel]; obj != nil {
					if fn, isFunc := obj.(*types.Func); isFunc {
						// Trace sinks (internal/trace) are exempt: they
						// append to in-memory buffers and never touch the
						// scheduler or I/O, so their call order cannot
						// leak map order into simulation behavior. The
						// wall-clock/rand/concurrency rules still apply to
						// the trace package's own code.
						if fn.Pkg() != nil && fn.Pkg().Path() == tracePath {
							return true
						}
						out = append(out, Diagnostic{Pos: n.Pos(), Message: fmt.Sprintf(
							"%s called while ranging over a map: side effects follow Go's randomized map order (iterate sorted keys instead)",
							sel.Sel.Name)})
					}
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || i >= len(n.Lhs) {
					continue
				}
				fn, ok := call.Fun.(*ast.Ident)
				if !ok || fn.Name != "append" {
					continue
				}
				if b, ok := pass.Pkg.Info.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
					continue
				}
				if id, ok := n.Lhs[i].(*ast.Ident); ok {
					if obj := identObj(pass, id); obj != nil {
						appended[obj] = call.Pos()
					}
				}
			}
		}
		return true
	})

	for obj, pos := range appended {
		if !sortedAfter(pass, scope, rng, obj) {
			out = append(out, Diagnostic{Pos: pos, Message: fmt.Sprintf(
				"%q collects map elements in randomized order and is never sorted in this function: sort it (or the keys) before use",
				obj.Name())})
		}
	}
	return out
}

func identObj(pass *Pass, id *ast.Ident) types.Object {
	if obj := pass.Pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return pass.Pkg.Info.Defs[id]
}

// sortedAfter reports whether obj is passed to a sort/slices call after
// the map range, anywhere in the enclosing function body.
func sortedAfter(pass *Pass, scope *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(scope, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && identObj(pass, id) == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}
