// Command madbench benchmarks the raw Madeleine library (no MPI, no
// devices): the raw_Madeleine curves of the paper's figures and the
// numbers of Table 1.
//
// Usage:
//
//	madbench                    # all three protocols, paper sweep
//	madbench -proto bip -sizes 4,1024,8388608
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mpichmad/internal/mpptest"
	"mpichmad/internal/netsim"
	"mpichmad/internal/stats"
)

func main() {
	proto := flag.String("proto", "", "protocol: tcp, sisci, bip (default: all)")
	sizesFlag := flag.String("sizes", "", "comma-separated sizes (default: paper sweep plus 8MB)")
	iters := flag.Int("iters", 3, "round trips per size")
	flag.Parse()

	sizes := append(stats.Sizes1B1MB(), 8*netsim.MB)
	if *sizesFlag != "" {
		sizes = nil
		for _, f := range strings.Split(*sizesFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				fatal(err)
			}
			sizes = append(sizes, n)
		}
	}
	protos := []string{"tcp", "sisci", "bip"}
	if *proto != "" {
		protos = []string{*proto}
	}
	var series []*stats.Series
	for _, pr := range protos {
		params, ok := netsim.ByProtocol(pr)
		if !ok {
			fatal(fmt.Errorf("unknown protocol %q", pr))
		}
		s, err := mpptest.RawMadeleine(pr, params, sizes, mpptest.Config{Iters: *iters})
		if err != nil {
			fatal(err)
		}
		series = append(series, s)
	}
	fmt.Print(stats.Table("raw Madeleine — transfer time", "us", series, stats.Point.LatencyUS))
	fmt.Println()
	fmt.Print(stats.Table("raw Madeleine — bandwidth", "MB/s", series, stats.Point.BandwidthMBs))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "madbench:", err)
	os.Exit(1)
}
