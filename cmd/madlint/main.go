// Command madlint machine-checks the simulator's coding rules: it loads
// the named packages (default ./...) with full type information and runs
// the three analyzers from internal/lint —
//
//	determinism  no wall clock, global rand, raw concurrency or
//	             map-order effects in simulation packages
//	pktswitch    switches over packet/control-kind enums cover every
//	             constant or carry an explicit default
//	vtimectx     scheduler-context callbacks (Scheduler.At/After,
//	             Event.OnFire, Endpoint.OnDeliver) never reach a
//	             vtime-blocking primitive
//
// Findings print as file:line:col: [analyzer] message and the exit status
// is 1 when any survive. Suppress a finding with a
// "//madlint:ignore <analyzer> <reason>" comment on or above its line;
// opt an out-of-tree file into the determinism rules with
// "//madlint:simulation". See internal/mpi's package documentation for
// the rules' rationale.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mpichmad/internal/lint"
)

func main() {
	var only string
	flag.StringVar(&only, "analyzers", "", "comma-separated analyzer names to run (default all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: madlint [-analyzers list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	analyzers := lint.All()
	if only != "" {
		want := make(map[string]bool)
		for _, name := range strings.Split(only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
				delete(want, a.Name)
			}
		}
		if len(want) > 0 {
			fmt.Fprintf(os.Stderr, "madlint: unknown analyzers: %v\n", want)
			os.Exit(2)
		}
		analyzers = sel
	}

	prog, err := lint.Load("", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "madlint: %v\n", err)
		os.Exit(2)
	}
	diags := lint.Run(prog, analyzers)
	for _, d := range diags {
		fmt.Println(d.String(prog.Fset))
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
