// Command experiments regenerates the paper's tables and figures from the
// simulated reproduction. Each experiment prints the same rows/series the
// paper reports (see DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	experiments -exp all
//	experiments -exp table1,fig7b -csv
//	experiments -exp gateway -trace trace_gateway.json   # Perfetto trace
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mpichmad/internal/cluster"
	"mpichmad/internal/experiments"
	"mpichmad/internal/stats"
	"mpichmad/internal/trace"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment ids: table1, fig6a, fig6b, fig7a, fig7b, fig8a, fig8b, fig9a, fig9b, table2, ablation-switch, ablation-split, forwarding, hcoll, gateway, adaptive, heteromux, multileader, scale, or 'all'")
	csv := flag.Bool("csv", false, "emit CSV for plotting instead of aligned tables")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON (Perfetto-loadable, virtual-time µs) of every session the selected experiments run")
	flag.Parse()

	var tracer *trace.Tracer
	if *traceOut != "" {
		tracer = trace.New(nil)
		cluster.SetDefaultTracer(tracer)
	}

	var results []*experiments.Result
	if *exp == "all" {
		rs, err := experiments.All()
		if err != nil {
			fatal(err)
		}
		results = rs
	} else {
		for _, id := range strings.Split(*exp, ",") {
			r, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fatal(err)
			}
			results = append(results, r)
		}
	}
	if tracer != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := tracer.WriteChrome(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "experiments: wrote %d trace events to %s\n",
			len(tracer.Events()), *traceOut)
	}
	for _, r := range results {
		if *csv && len(r.Series) > 0 {
			fmt.Printf("# %s (%s)\n", r.Title, r.ID)
			if strings.HasSuffix(r.ID, "a") {
				fmt.Print(stats.CSV(r.Series, stats.Point.LatencyUS))
			} else {
				fmt.Print(stats.CSV(r.Series, stats.Point.BandwidthMBs))
			}
		} else {
			fmt.Println(r.Text)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
