// Command mpptest is the reproduction's analogue of the mpptest tool the
// paper used (§5.1): an MPI-level ping-pong sweep over message sizes on a
// configurable simulated topology, reporting one-way transfer time and
// bandwidth.
//
// Usage:
//
//	mpptest -proto sisci                 # mono-protocol ch_mad (default)
//	mpptest -proto tcp -device ch_p4     # the ch_p4 baseline
//	mpptest -multi                       # SCI + idle TCP poller (Fig. 9)
//	mpptest -sizes 0,4,1024,1048576 -iters 5
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mpichmad/internal/cluster"
	"mpichmad/internal/mpptest"
	"mpichmad/internal/stats"
)

func main() {
	proto := flag.String("proto", "sisci", "network protocol: tcp, sisci, bip")
	device := flag.String("device", "ch_mad", "inter-node device: ch_mad or ch_p4 (ch_p4 requires -proto tcp)")
	multi := flag.Bool("multi", false, "multi-protocol config: traffic on -proto with an additional idle TCP channel (Fig. 9)")
	sizesFlag := flag.String("sizes", "", "comma-separated message sizes in bytes (default: the paper's 1B..1MB sweep)")
	iters := flag.Int("iters", 3, "round trips per size")
	csv := flag.Bool("csv", false, "CSV output")
	flag.Parse()

	sizes := stats.Sizes1B1MB()
	if *sizesFlag != "" {
		sizes = nil
		for _, f := range strings.Split(*sizesFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				fatal(err)
			}
			sizes = append(sizes, n)
		}
	}

	topo := cluster.TwoNodes(*proto)
	topo.Device = *device
	if *multi {
		topo = cluster.Topology{
			Nodes: []cluster.NodeSpec{{Name: "n0", Procs: 1}, {Name: "n1", Procs: 1}},
			Networks: []cluster.NetworkSpec{
				{Name: *proto, Protocol: *proto, Nodes: []string{"n0", "n1"}},
				{Name: "tcp", Protocol: "tcp", Nodes: []string{"n0", "n1"}},
			},
		}
	}

	name := *device + "/" + *proto
	series, err := mpptest.MPIPingPong(name, topo, sizes, mpptest.Config{Iters: *iters})
	if err != nil {
		fatal(err)
	}
	all := []*stats.Series{series}
	if *csv {
		fmt.Print(stats.CSV(all, stats.Point.LatencyUS))
		return
	}
	fmt.Print(stats.Table("mpptest "+name+" — transfer time", "us", all, stats.Point.LatencyUS))
	fmt.Println()
	fmt.Print(stats.Table("mpptest "+name+" — bandwidth", "MB/s", all, stats.Point.BandwidthMBs))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mpptest:", err)
	os.Exit(1)
}
