// Command benchcheck is the CI bench-regression gate: it reads the
// regenerated BENCH_collectives.json (written by BenchmarkHierCollectives)
// and fails if the hierarchy-aware algorithms stop beating their flat
// counterparts on simulated time where they are supposed to — most
// importantly, if Allreduce_2level loses to Allreduce_flat at large
// message sizes on the contended-backbone 2x4 heterogeneous topology —
// or if the multi-path transport loses its striping/adaptive wins on the
// bridged triangle, or any gateway queue exceeds its credit window, or
// the per-link device mux stops beating the uniform single-protocol
// transport on the mixed SCI+BIP+TCP cluster, or the multi-leader
// rail-striped collectives lose their 1.5x aggregate-bandwidth win over
// the single-leader two-level forms at 1 MiB on the bridged triangle.
//
// Every failure prints the expected relation, the actual values and the
// margin by which the rule missed, so a regression can be triaged from
// the CI log alone.
//
// It also reads BENCH_scale.json (written by BenchmarkScaleMachine) and
// gates the 1000+-rank scaling story: the routing planner's cost growth
// from 256 to 1024 ranks must stay below the quadratic 16x on both time
// and allocated bytes (plan construction itself must stay near-linear),
// and the full 1024-rank scale experiment must complete within a generous
// wall-clock ceiling — the regression alarms for the hierarchical
// routing and lazy-resolution hot paths.
//
// With -scaleseed it additionally compares the regenerated scale file's
// simulated series against a seed snapshot (the committed BENCH_scale.json
// of the base revision): every virtual time must stay within 2% of the
// seed. The simulation is deterministic, so any drift at all means the
// change perturbed transport behavior — the gate CI uses to prove that
// disabled tracing costs nothing on the scale machine.
//
// Usage:
//
//	benchcheck [-f BENCH_collectives.json] [-scale BENCH_scale.json]
//	           [-scaleseed BENCH_scale_seed.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type point struct {
	SizeBytes int     `json:"size_bytes"`
	VirtualUS float64 `json:"virtual_us"`
}

type series struct {
	Name   string  `json:"name"`
	Points []point `json:"points"`
}

type benchFile struct {
	Experiment string   `json:"experiment"`
	Topology   string   `json:"topology"`
	Series     []series `json:"series"`
}

// rule asserts that the challenger series beats the incumbent at every
// recorded size >= minSize: incumbent > challenger x minRatio. minRatio
// 0 means 1.0 — strictly faster; 1.5 demands a 1.5x win.
type rule struct {
	challenger, incumbent string
	minSize               int
	minRatio              float64
	why                   string
}

// capRule asserts that a series never exceeds its bound series at any
// common size (used for queue-occupancy series, whose point values are
// counts, not times). The bound rides the same file so the gate tracks
// whatever window the data was actually generated under.
type capRule struct {
	series, bound string
	why           string
}

// scalePlanner is one machine size's planner cost sample from
// BENCH_scale.json.
type scalePlanner struct {
	Ranks            int   `json:"ranks"`
	WorkloadNsPerOp  int64 `json:"workload_ns_per_op"`
	WorkloadBPerOp   int64 `json:"workload_bytes_per_op"`
	WorkloadAllocs   int64 `json:"workload_allocs_per_op"`
	ConstructNsPerOp int64 `json:"construct_ns_per_op"`
}

type scaleFile struct {
	Experiment string         `json:"experiment"`
	Planner    []scalePlanner `json:"planner"`
	RunRanks   int            `json:"run_ranks"`
	RunWallMs  float64        `json:"run_wall_ms"`
	Series     []series       `json:"series"`
}

// Scale-gate bounds. Rank count grows 4x between the two planner samples,
// so a quadratic planner would grow 16x; the growth rules keep every
// measured curve strictly below that, with the measured values (~13x
// workload ns, ~9.1x workload bytes, ~6.8x allocs, ~4.2x construction)
// leaving real headroom. Allocation ratios are deterministic; the wall
// ceiling is deliberately generous — it exists to catch the planner
// falling back to all-pairs work (minutes), not host jitter.
const (
	scaleWorkloadNsMaxRatio = 16.0 // quadratic bound on the resolution sweep
	scaleWorkloadBMaxRatio  = 14.0 // measured 9.1x
	scaleAllocsMaxRatio     = 12.0 // measured 6.8x
	scaleConstructMaxRatio  = 8.0  // near-linear construction, measured 4.2x
	scaleWallCeilingMs      = 30000
)

// checkScale applies the growth-ratio and wall-clock gates to
// BENCH_scale.json; returns the number of failed rules.
func checkScale(file string) int {
	data, err := os.ReadFile(file)
	if err != nil {
		fatal(err)
	}
	var sf scaleFile
	if err := json.Unmarshal(data, &sf); err != nil {
		fatal(fmt.Errorf("%s: %w", file, err))
	}
	failed := 0
	fail := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "benchcheck: FAIL: "+format+"\n", args...)
		failed++
	}
	if len(sf.Planner) != 2 || sf.Planner[0].Ranks >= sf.Planner[1].Ranks {
		fail("%s: want two planner samples in increasing rank order, got %+v", file, sf.Planner)
		return failed
	}
	small, big := sf.Planner[0], sf.Planner[1]
	ratio := func(a, b int64) float64 {
		if b <= 0 {
			return 0
		}
		return float64(a) / float64(b)
	}
	growth := []struct {
		name     string
		got, max float64
		why      string
	}{
		{"workload ns/op", ratio(big.WorkloadNsPerOp, small.WorkloadNsPerOp), scaleWorkloadNsMaxRatio,
			"planner resolution sweep must stay below quadratic growth in ranks"},
		{"workload B/op", ratio(big.WorkloadBPerOp, small.WorkloadBPerOp), scaleWorkloadBMaxRatio,
			"planner allocation growth must stay well below quadratic (lazy trees, not all-pairs state)"},
		{"workload allocs/op", ratio(big.WorkloadAllocs, small.WorkloadAllocs), scaleAllocsMaxRatio,
			"planner allocation count must stay well below quadratic"},
		{"construct ns/op", ratio(big.ConstructNsPerOp, small.ConstructNsPerOp), scaleConstructMaxRatio,
			"bare plan construction must stay near-linear in ranks"},
	}
	for _, g := range growth {
		if g.got <= 0 {
			fail("%s: %s growth ratio unmeasurable (%d -> %d ranks)", file, g.name, small.Ranks, big.Ranks)
			continue
		}
		if g.got >= g.max {
			fail("planner %s grew %.2fx from %d to %d ranks (bound %.1fx) — %s",
				g.name, g.got, small.Ranks, big.Ranks, g.max, g.why)
		}
	}
	if sf.RunWallMs <= 0 {
		fail("%s: missing run_wall_ms for the %d-rank scale run", file, sf.RunRanks)
	} else if sf.RunWallMs > scaleWallCeilingMs {
		fail("the %d-rank scale experiment took %.0f ms of wall clock (ceiling %d ms)",
			sf.RunRanks, sf.RunWallMs, scaleWallCeilingMs)
	}
	// The simulated sweeps are deterministic: both collectives must have
	// rendered non-trivial times, and Bcast must stay cheaper than
	// Allreduce at every common size (it moves half the traffic).
	bySeries := make(map[string]map[int]float64)
	for _, s := range sf.Series {
		m := make(map[int]float64)
		for _, p := range s.Points {
			if p.VirtualUS <= 0 {
				fail("%s: series %s has a non-positive simulated time at %d B", file, s.Name, p.SizeBytes)
			}
			m[p.SizeBytes] = p.VirtualUS
		}
		bySeries[s.Name] = m
	}
	ar, okA := bySeries["Allreduce"]
	bc, okB := bySeries["Bcast"]
	if !okA || !okB {
		fail("%s: want Allreduce and Bcast series, got %d series", file, len(sf.Series))
	} else {
		for size, a := range ar {
			if b, ok := bc[size]; ok && b >= a {
				fail("Bcast (%.1f us) is not cheaper than Allreduce (%.1f us) at %d B on the scale machine",
					b, a, size)
			}
		}
	}
	return failed
}

// scaleSeedTolerance bounds how far the regenerated scale series may
// drift from the seed snapshot: 2%. Virtual times are deterministic, so
// the expected drift is exactly zero; the headroom only absorbs a seed
// captured before an intentional, reviewed cost-model change.
const scaleSeedTolerance = 0.02

// checkScaleSeed compares the regenerated scale file's simulated series
// point-by-point against the seed snapshot; returns the number of failed
// comparisons.
func checkScaleSeed(file, seedFile string) int {
	load := func(name string) (*scaleFile, error) {
		data, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		var sf scaleFile
		if err := json.Unmarshal(data, &sf); err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		return &sf, nil
	}
	cur, err := load(file)
	if err != nil {
		fatal(err)
	}
	seed, err := load(seedFile)
	if err != nil {
		fatal(err)
	}
	failed := 0
	fail := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "benchcheck: FAIL: "+format+"\n", args...)
		failed++
	}
	curBy := make(map[string]map[int]float64)
	for _, s := range cur.Series {
		m := make(map[int]float64)
		for _, p := range s.Points {
			m[p.SizeBytes] = p.VirtualUS
		}
		curBy[s.Name] = m
	}
	checked := 0
	for _, s := range seed.Series {
		m, ok := curBy[s.Name]
		if !ok {
			fail("series %q present in seed %s but missing from %s", s.Name, seedFile, file)
			continue
		}
		for _, p := range s.Points {
			got, ok := m[p.SizeBytes]
			if !ok {
				fail("series %s lost its %d B point relative to seed %s", s.Name, p.SizeBytes, seedFile)
				continue
			}
			checked++
			if p.VirtualUS <= 0 {
				continue
			}
			drift := (got - p.VirtualUS) / p.VirtualUS
			if drift < 0 {
				drift = -drift
			}
			if drift > scaleSeedTolerance {
				fail("series %s at %d B drifted %.2f%% from the seed (%.1f us -> %.1f us, bound %.0f%%) — "+
					"simulated time is deterministic, so the change perturbed the transport itself",
					s.Name, p.SizeBytes, drift*100, p.VirtualUS, got, scaleSeedTolerance*100)
			}
		}
	}
	if checked == 0 {
		fail("no common scale series points between %s and seed %s", file, seedFile)
	}
	return failed
}

func main() {
	file := flag.String("f", "BENCH_collectives.json", "bench series file to check")
	scaleF := flag.String("scale", "BENCH_scale.json", "scale bench file to check (\"\" to skip)")
	scaleSeed := flag.String("scaleseed", "", "seed BENCH_scale.json snapshot to diff the regenerated scale series against (\"\" to skip)")
	flag.Parse()

	data, err := os.ReadFile(*file)
	if err != nil {
		fatal(err)
	}
	var bf benchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		fatal(fmt.Errorf("%s: %w", *file, err))
	}
	byName := make(map[string]map[int]float64)
	for _, s := range bf.Series {
		m := make(map[int]float64)
		for _, p := range s.Points {
			m[p.SizeBytes] = p.VirtualUS
		}
		byName[s.Name] = m
	}

	rules := []rule{
		{"Allreduce_2level_cap", "Allreduce_flat_cap", 64 << 10, 0,
			"two-level Allreduce must beat flat on time under backbone contention"},
		{"Bcast_2level_cap", "Bcast_flat_cap", 64 << 10, 0,
			"two-level Bcast must beat flat on time under backbone contention"},
		{"Allreduce_ring2l_cap", "Allreduce_flat_cap", 64 << 10, 0,
			"two-level ring Allreduce must beat the flat tree under backbone contention"},
		{"Allreduce_ring", "Allreduce_flat", 64 << 10, 0,
			"ring Allreduce must beat the binomial tree for large vectors"},
		// X5: the multi-gateway bridged topology (cost-model routing).
		{"Bcast_2level_gw", "Bcast_flat_gw", 64 << 10, 0,
			"routed two-level Bcast must beat the flat-forwarded tree on the bridged 3-cluster topology"},
		{"Allreduce_2level_gw", "Allreduce_flat_gw", 64 << 10, 0,
			"routed two-level Allreduce must beat the flat-forwarded tree on the bridged 3-cluster topology"},
		{"GwHops_Bcast_2level_gw", "GwHops_Bcast_2level_gwnaive", 64 << 10, 0,
			"gateway-aware two-level Bcast must cross strictly fewer gateway hops than oblivious leaders"},
		{"GwHops_Allreduce_2level_gw", "GwHops_Allreduce_2level_gwnaive", 64 << 10, 0,
			"gateway-aware two-level Allreduce must cross strictly fewer gateway hops than oblivious leaders"},
		{"Relay_pipelined", "Relay_storefwd", 64 << 10, 0,
			"pipelined gateway relay must beat store-and-forward for >= 64 KiB payloads"},
		// X5 variant: the bridged triangle (adaptive multi-path relay).
		{"Relay_stripe", "Relay_single", 64 << 10, 1.5,
			"two-rail striping must be >= 1.5x faster than the single-path pipelined relay"},
		{"Adapt_adaptive", "Adapt_static", 64 << 10, 0,
			"the adaptive re-plan must beat the static plan when a bridge is loaded"},
		{"AdaptQ_adaptive", "AdaptQ_static", 64 << 10, 0,
			"the adaptive re-plan must lower the hot gateway's relay queue depth"},
		// X6: the per-link device mux on the mixed SCI+BIP+TCP cluster.
		{"Mux_Bcast", "Uniform_Bcast", 8, 0,
			"the per-link device mux must beat the uniform single-protocol transport on Bcast at every size"},
		{"Mux_Allreduce", "Uniform_Allreduce", 8, 0,
			"the per-link device mux must beat the uniform single-protocol transport on Allreduce at every size"},
		// X9: multi-leader rail-striped collectives on the bridged triangle.
		{"ML_Bcast_multi", "ML_Bcast_single", 1 << 20, 1.5,
			"the autotuner-selected multi-leader Bcast must be >= 1.5x faster than the forced single-leader two-level form at 1 MiB"},
		{"ML_Alltoall_multi", "ML_Alltoall_single", 1 << 20, 1.5,
			"the autotuner-selected multi-leader Alltoall must be >= 1.5x faster than the forced single-leader two-level form at 1 MiB"},
	}
	caps := []capRule{
		{"RelayQPeakMax", "RelayQWindow",
			"no gateway store-and-forward queue may exceed the configured credit window"},
	}

	failed := 0
	for _, r := range rules {
		minRatio := r.minRatio
		if minRatio == 0 {
			minRatio = 1.0
		}
		ch, ok := byName[r.challenger]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchcheck: FAIL: series %q missing from %s\n", r.challenger, *file)
			failed++
			continue
		}
		inc, ok := byName[r.incumbent]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchcheck: FAIL: series %q missing from %s\n", r.incumbent, *file)
			failed++
			continue
		}
		checked := 0
		for size, incUS := range inc {
			if size < r.minSize {
				continue
			}
			chUS, ok := ch[size]
			if !ok {
				continue
			}
			checked++
			if incUS > chUS*minRatio {
				continue
			}
			// Expected vs actual plus the miss margin, in both the
			// rule's unit and as a ratio where one is defined.
			fmt.Fprintf(os.Stderr,
				"benchcheck: FAIL: %s vs %s at %d B — %s\n", r.challenger, r.incumbent, size, r.why)
			fmt.Fprintf(os.Stderr,
				"  expected: %s > %.2fx × %s\n", r.incumbent, minRatio, r.challenger)
			fmt.Fprintf(os.Stderr,
				"  actual:   %s = %.1f, %s = %.1f (needed %s < %.1f, short by %.1f",
				r.incumbent, incUS, r.challenger, chUS, r.challenger, incUS/minRatio, chUS-incUS/minRatio)
			if chUS > 0 {
				fmt.Fprintf(os.Stderr, "; achieved %.2fx of the required %.2fx", incUS/chUS, minRatio)
			}
			fmt.Fprintln(os.Stderr, ")")
			failed++
		}
		if checked == 0 {
			fmt.Fprintf(os.Stderr, "benchcheck: FAIL: no common sizes >= %d B for %s vs %s\n",
				r.minSize, r.challenger, r.incumbent)
			failed++
		}
	}
	for _, c := range caps {
		s, ok := byName[c.series]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchcheck: FAIL: series %q missing from %s\n", c.series, *file)
			failed++
			continue
		}
		bound, ok := byName[c.bound]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchcheck: FAIL: bound series %q missing from %s\n", c.bound, *file)
			failed++
			continue
		}
		checked := 0
		for size, v := range s {
			max, ok := bound[size]
			if !ok {
				continue
			}
			checked++
			if v <= max {
				continue
			}
			fmt.Fprintf(os.Stderr, "benchcheck: FAIL: %s at %d B — %s\n", c.series, size, c.why)
			fmt.Fprintf(os.Stderr, "  expected: <= %s = %.1f\n  actual:   %.1f (over by %.1f)\n",
				c.bound, max, v, v-max)
			failed++
		}
		if checked == 0 {
			fmt.Fprintf(os.Stderr, "benchcheck: FAIL: no common sizes for %s vs bound %s\n",
				c.series, c.bound)
			failed++
		}
	}
	scaleFailed := 0
	if *scaleF != "" {
		scaleFailed = checkScale(*scaleF)
		if *scaleSeed != "" {
			scaleFailed += checkScaleSeed(*scaleF, *scaleSeed)
		}
	}
	if failed+scaleFailed > 0 {
		os.Exit(1)
	}
	fmt.Printf("benchcheck: %d rules and %d caps hold on %s\n", len(rules), len(caps), *file)
	if *scaleF != "" {
		fmt.Printf("benchcheck: scale growth, wall-clock and collective gates hold on %s\n", *scaleF)
	}
	if *scaleF != "" && *scaleSeed != "" {
		fmt.Printf("benchcheck: scale series within %.0f%% of seed %s\n", scaleSeedTolerance*100, *scaleSeed)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcheck:", err)
	os.Exit(1)
}
