// Command benchcheck is the CI bench-regression gate: it reads the
// regenerated BENCH_collectives.json (written by BenchmarkHierCollectives)
// and fails if the hierarchy-aware algorithms stop beating their flat
// counterparts on simulated time where they are supposed to — most
// importantly, if Allreduce_2level loses to Allreduce_flat at large
// message sizes on the contended-backbone 2x4 heterogeneous topology.
//
// Usage:
//
//	benchcheck [-f BENCH_collectives.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type point struct {
	SizeBytes int     `json:"size_bytes"`
	VirtualUS float64 `json:"virtual_us"`
}

type series struct {
	Name   string  `json:"name"`
	Points []point `json:"points"`
}

type benchFile struct {
	Experiment string   `json:"experiment"`
	Topology   string   `json:"topology"`
	Series     []series `json:"series"`
}

// rule asserts that the challenger series is strictly faster than the
// incumbent at every recorded size >= minSize.
type rule struct {
	challenger, incumbent string
	minSize               int
	why                   string
}

func main() {
	file := flag.String("f", "BENCH_collectives.json", "bench series file to check")
	flag.Parse()

	data, err := os.ReadFile(*file)
	if err != nil {
		fatal(err)
	}
	var bf benchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		fatal(fmt.Errorf("%s: %w", *file, err))
	}
	byName := make(map[string]map[int]float64)
	for _, s := range bf.Series {
		m := make(map[int]float64)
		for _, p := range s.Points {
			m[p.SizeBytes] = p.VirtualUS
		}
		byName[s.Name] = m
	}

	rules := []rule{
		{"Allreduce_2level_cap", "Allreduce_flat_cap", 64 << 10,
			"two-level Allreduce must beat flat on time under backbone contention"},
		{"Bcast_2level_cap", "Bcast_flat_cap", 64 << 10,
			"two-level Bcast must beat flat on time under backbone contention"},
		{"Allreduce_ring2l_cap", "Allreduce_flat_cap", 64 << 10,
			"two-level ring Allreduce must beat the flat tree under backbone contention"},
		{"Allreduce_ring", "Allreduce_flat", 64 << 10,
			"ring Allreduce must beat the binomial tree for large vectors"},
		// X5: the multi-gateway bridged topology (cost-model routing).
		{"Bcast_2level_gw", "Bcast_flat_gw", 64 << 10,
			"routed two-level Bcast must beat the flat-forwarded tree on the bridged 3-cluster topology"},
		{"Allreduce_2level_gw", "Allreduce_flat_gw", 64 << 10,
			"routed two-level Allreduce must beat the flat-forwarded tree on the bridged 3-cluster topology"},
		{"GwHops_Bcast_2level_gw", "GwHops_Bcast_2level_gwnaive", 64 << 10,
			"gateway-aware two-level Bcast must cross strictly fewer gateway hops than oblivious leaders"},
		{"GwHops_Allreduce_2level_gw", "GwHops_Allreduce_2level_gwnaive", 64 << 10,
			"gateway-aware two-level Allreduce must cross strictly fewer gateway hops than oblivious leaders"},
		{"Relay_pipelined", "Relay_storefwd", 64 << 10,
			"pipelined gateway relay must beat store-and-forward for >= 64 KiB payloads"},
	}

	failed := 0
	for _, r := range rules {
		ch, ok := byName[r.challenger]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchcheck: FAIL: series %q missing from %s\n", r.challenger, *file)
			failed++
			continue
		}
		inc, ok := byName[r.incumbent]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchcheck: FAIL: series %q missing from %s\n", r.incumbent, *file)
			failed++
			continue
		}
		checked := 0
		for size, incUS := range inc {
			if size < r.minSize {
				continue
			}
			chUS, ok := ch[size]
			if !ok {
				continue
			}
			checked++
			if chUS >= incUS {
				fmt.Fprintf(os.Stderr,
					"benchcheck: FAIL: %s (%.1f us) not faster than %s (%.1f us) at %d B — %s\n",
					r.challenger, chUS, r.incumbent, incUS, size, r.why)
				failed++
			}
		}
		if checked == 0 {
			fmt.Fprintf(os.Stderr, "benchcheck: FAIL: no common sizes >= %d B for %s vs %s\n",
				r.minSize, r.challenger, r.incumbent)
			failed++
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
	fmt.Printf("benchcheck: %d rules hold on %s\n", len(rules), *file)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcheck:", err)
	os.Exit(1)
}
