// Command benchcheck is the CI bench-regression gate: it reads the
// regenerated BENCH_collectives.json (written by BenchmarkHierCollectives)
// and fails if the hierarchy-aware algorithms stop beating their flat
// counterparts on simulated time where they are supposed to — most
// importantly, if Allreduce_2level loses to Allreduce_flat at large
// message sizes on the contended-backbone 2x4 heterogeneous topology —
// or if the multi-path transport loses its striping/adaptive wins on the
// bridged triangle, or any gateway queue exceeds its credit window, or
// the per-link device mux stops beating the uniform single-protocol
// transport on the mixed SCI+BIP+TCP cluster.
//
// Every failure prints the expected relation, the actual values and the
// margin by which the rule missed, so a regression can be triaged from
// the CI log alone.
//
// Usage:
//
//	benchcheck [-f BENCH_collectives.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type point struct {
	SizeBytes int     `json:"size_bytes"`
	VirtualUS float64 `json:"virtual_us"`
}

type series struct {
	Name   string  `json:"name"`
	Points []point `json:"points"`
}

type benchFile struct {
	Experiment string   `json:"experiment"`
	Topology   string   `json:"topology"`
	Series     []series `json:"series"`
}

// rule asserts that the challenger series beats the incumbent at every
// recorded size >= minSize: incumbent > challenger x minRatio. minRatio
// 0 means 1.0 — strictly faster; 1.5 demands a 1.5x win.
type rule struct {
	challenger, incumbent string
	minSize               int
	minRatio              float64
	why                   string
}

// capRule asserts that a series never exceeds its bound series at any
// common size (used for queue-occupancy series, whose point values are
// counts, not times). The bound rides the same file so the gate tracks
// whatever window the data was actually generated under.
type capRule struct {
	series, bound string
	why           string
}

func main() {
	file := flag.String("f", "BENCH_collectives.json", "bench series file to check")
	flag.Parse()

	data, err := os.ReadFile(*file)
	if err != nil {
		fatal(err)
	}
	var bf benchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		fatal(fmt.Errorf("%s: %w", *file, err))
	}
	byName := make(map[string]map[int]float64)
	for _, s := range bf.Series {
		m := make(map[int]float64)
		for _, p := range s.Points {
			m[p.SizeBytes] = p.VirtualUS
		}
		byName[s.Name] = m
	}

	rules := []rule{
		{"Allreduce_2level_cap", "Allreduce_flat_cap", 64 << 10, 0,
			"two-level Allreduce must beat flat on time under backbone contention"},
		{"Bcast_2level_cap", "Bcast_flat_cap", 64 << 10, 0,
			"two-level Bcast must beat flat on time under backbone contention"},
		{"Allreduce_ring2l_cap", "Allreduce_flat_cap", 64 << 10, 0,
			"two-level ring Allreduce must beat the flat tree under backbone contention"},
		{"Allreduce_ring", "Allreduce_flat", 64 << 10, 0,
			"ring Allreduce must beat the binomial tree for large vectors"},
		// X5: the multi-gateway bridged topology (cost-model routing).
		{"Bcast_2level_gw", "Bcast_flat_gw", 64 << 10, 0,
			"routed two-level Bcast must beat the flat-forwarded tree on the bridged 3-cluster topology"},
		{"Allreduce_2level_gw", "Allreduce_flat_gw", 64 << 10, 0,
			"routed two-level Allreduce must beat the flat-forwarded tree on the bridged 3-cluster topology"},
		{"GwHops_Bcast_2level_gw", "GwHops_Bcast_2level_gwnaive", 64 << 10, 0,
			"gateway-aware two-level Bcast must cross strictly fewer gateway hops than oblivious leaders"},
		{"GwHops_Allreduce_2level_gw", "GwHops_Allreduce_2level_gwnaive", 64 << 10, 0,
			"gateway-aware two-level Allreduce must cross strictly fewer gateway hops than oblivious leaders"},
		{"Relay_pipelined", "Relay_storefwd", 64 << 10, 0,
			"pipelined gateway relay must beat store-and-forward for >= 64 KiB payloads"},
		// X5 variant: the bridged triangle (adaptive multi-path relay).
		{"Relay_stripe", "Relay_single", 64 << 10, 1.5,
			"two-rail striping must be >= 1.5x faster than the single-path pipelined relay"},
		{"Adapt_adaptive", "Adapt_static", 64 << 10, 0,
			"the adaptive re-plan must beat the static plan when a bridge is loaded"},
		{"AdaptQ_adaptive", "AdaptQ_static", 64 << 10, 0,
			"the adaptive re-plan must lower the hot gateway's relay queue depth"},
		// X6: the per-link device mux on the mixed SCI+BIP+TCP cluster.
		{"Mux_Bcast", "Uniform_Bcast", 8, 0,
			"the per-link device mux must beat the uniform single-protocol transport on Bcast at every size"},
		{"Mux_Allreduce", "Uniform_Allreduce", 8, 0,
			"the per-link device mux must beat the uniform single-protocol transport on Allreduce at every size"},
	}
	caps := []capRule{
		{"RelayQPeakMax", "RelayQWindow",
			"no gateway store-and-forward queue may exceed the configured credit window"},
	}

	failed := 0
	for _, r := range rules {
		minRatio := r.minRatio
		if minRatio == 0 {
			minRatio = 1.0
		}
		ch, ok := byName[r.challenger]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchcheck: FAIL: series %q missing from %s\n", r.challenger, *file)
			failed++
			continue
		}
		inc, ok := byName[r.incumbent]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchcheck: FAIL: series %q missing from %s\n", r.incumbent, *file)
			failed++
			continue
		}
		checked := 0
		for size, incUS := range inc {
			if size < r.minSize {
				continue
			}
			chUS, ok := ch[size]
			if !ok {
				continue
			}
			checked++
			if incUS > chUS*minRatio {
				continue
			}
			// Expected vs actual plus the miss margin, in both the
			// rule's unit and as a ratio where one is defined.
			fmt.Fprintf(os.Stderr,
				"benchcheck: FAIL: %s vs %s at %d B — %s\n", r.challenger, r.incumbent, size, r.why)
			fmt.Fprintf(os.Stderr,
				"  expected: %s > %.2fx × %s\n", r.incumbent, minRatio, r.challenger)
			fmt.Fprintf(os.Stderr,
				"  actual:   %s = %.1f, %s = %.1f (needed %s < %.1f, short by %.1f",
				r.incumbent, incUS, r.challenger, chUS, r.challenger, incUS/minRatio, chUS-incUS/minRatio)
			if chUS > 0 {
				fmt.Fprintf(os.Stderr, "; achieved %.2fx of the required %.2fx", incUS/chUS, minRatio)
			}
			fmt.Fprintln(os.Stderr, ")")
			failed++
		}
		if checked == 0 {
			fmt.Fprintf(os.Stderr, "benchcheck: FAIL: no common sizes >= %d B for %s vs %s\n",
				r.minSize, r.challenger, r.incumbent)
			failed++
		}
	}
	for _, c := range caps {
		s, ok := byName[c.series]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchcheck: FAIL: series %q missing from %s\n", c.series, *file)
			failed++
			continue
		}
		bound, ok := byName[c.bound]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchcheck: FAIL: bound series %q missing from %s\n", c.bound, *file)
			failed++
			continue
		}
		checked := 0
		for size, v := range s {
			max, ok := bound[size]
			if !ok {
				continue
			}
			checked++
			if v <= max {
				continue
			}
			fmt.Fprintf(os.Stderr, "benchcheck: FAIL: %s at %d B — %s\n", c.series, size, c.why)
			fmt.Fprintf(os.Stderr, "  expected: <= %s = %.1f\n  actual:   %.1f (over by %.1f)\n",
				c.bound, max, v, v-max)
			failed++
		}
		if checked == 0 {
			fmt.Fprintf(os.Stderr, "benchcheck: FAIL: no common sizes for %s vs bound %s\n",
				c.series, c.bound)
			failed++
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
	fmt.Printf("benchcheck: %d rules and %d caps hold on %s\n", len(rules), len(caps), *file)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcheck:", err)
	os.Exit(1)
}
