// Top-level benchmark harness: one benchmark per table and figure of the
// paper's evaluation (§5), plus the ablations from DESIGN.md. Wall-clock
// ns/op measures the simulator; the *paper-relevant* results are the
// custom metrics, reported in virtual microseconds (vus) and paper
// megabytes per second (MB/s, 1 MB = 2^20 B):
//
//	go test -bench=. -benchmem
//
// The regenerated rows/series themselves come from:
//
//	go run ./cmd/experiments -exp all
package mpichmad_test

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"mpichmad/internal/baselines"
	"mpichmad/internal/cluster"
	"mpichmad/internal/experiments"
	"mpichmad/internal/mpptest"
	"mpichmad/internal/netsim"
	"mpichmad/internal/route"
	"mpichmad/internal/stats"
)

// BenchmarkTable1RawMadeleine regenerates Table 1: raw Madeleine latency
// (4 B) and bandwidth (8 MB) per protocol.
func BenchmarkTable1RawMadeleine(b *testing.B) {
	for _, params := range []netsim.Params{
		netsim.FastEthernetTCP(), netsim.SCISISCI(), netsim.MyrinetBIP(),
	} {
		params := params
		b.Run(params.Protocol, func(b *testing.B) {
			var lat, bw float64
			for i := 0; i < b.N; i++ {
				l, err := mpptest.RawMadeleine("raw", params, []int{4}, mpptest.Config{})
				if err != nil {
					b.Fatal(err)
				}
				w, err := mpptest.RawMadeleine("raw", params, []int{8 * netsim.MB}, mpptest.Config{Iters: 1})
				if err != nil {
					b.Fatal(err)
				}
				lat = l.Points[0].LatencyUS()
				bw = w.Points[0].BandwidthMBs()
			}
			b.ReportMetric(lat, "vus/4B")
			b.ReportMetric(bw, "MB/s@8MB")
		})
	}
}

// figBench runs one figure experiment and reports its headline metrics:
// the small-message latency of each series and the 1 MB bandwidth.
func figBench(b *testing.B, gen func(byte) (*experiments.Result, error)) {
	b.Helper()
	var latA, bw1M map[string]float64
	for i := 0; i < b.N; i++ {
		ra, err := gen('a')
		if err != nil {
			b.Fatal(err)
		}
		rb, err := gen('b')
		if err != nil {
			b.Fatal(err)
		}
		latA = map[string]float64{}
		bw1M = map[string]float64{}
		for _, s := range ra.Series {
			if p, ok := s.At(4); ok {
				latA[s.Name] = p.LatencyUS()
			}
		}
		for _, s := range rb.Series {
			if p, ok := s.At(1 << 20); ok {
				bw1M[s.Name] = p.BandwidthMBs()
			}
		}
	}
	for name, v := range latA {
		b.ReportMetric(v, "vus4B:"+sanitize(name))
	}
	for name, v := range bw1M {
		b.ReportMetric(v, "MB/s1M:"+sanitize(name))
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch r {
		case ' ', '/', '+':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

// BenchmarkFig6TCP regenerates Figure 6 (ch_mad vs ch_p4 vs raw Madeleine
// on TCP/Fast-Ethernet).
func BenchmarkFig6TCP(b *testing.B) { figBench(b, experiments.Fig6) }

// BenchmarkFig7SCI regenerates Figure 7 (ch_mad vs ScaMPI vs SCI-MPICH vs
// raw Madeleine on SISCI/SCI).
func BenchmarkFig7SCI(b *testing.B) { figBench(b, experiments.Fig7) }

// BenchmarkFig8BIP regenerates Figure 8 (ch_mad vs MPI-GM vs MPICH-PM vs
// raw Madeleine on BIP/Myrinet).
func BenchmarkFig8BIP(b *testing.B) { figBench(b, experiments.Fig8) }

// BenchmarkFig9MultiProtocol regenerates Figure 9 (SCI alone vs SCI with
// an additional idle TCP polling thread) and reports the latency gap.
func BenchmarkFig9MultiProtocol(b *testing.B) {
	var aloneLat, bothLat, aloneBW, bothBW float64
	for i := 0; i < b.N; i++ {
		ra, err := experiments.Fig9('a')
		if err != nil {
			b.Fatal(err)
		}
		rb, err := experiments.Fig9('b')
		if err != nil {
			b.Fatal(err)
		}
		pa, _ := ra.Series[0].At(4)
		pb, _ := ra.Series[1].At(4)
		aloneLat, bothLat = pa.LatencyUS(), pb.LatencyUS()
		qa, _ := rb.Series[0].At(1 << 20)
		qb, _ := rb.Series[1].At(1 << 20)
		aloneBW, bothBW = qa.BandwidthMBs(), qb.BandwidthMBs()
	}
	b.ReportMetric(aloneLat, "vus4B:SCI_only")
	b.ReportMetric(bothLat, "vus4B:SCI+TCP")
	b.ReportMetric(bothLat-aloneLat, "vus4B:gap")
	b.ReportMetric(aloneBW, "MB/s1M:SCI_only")
	b.ReportMetric(bothBW, "MB/s1M:SCI+TCP")
}

// BenchmarkTable2Summary regenerates Table 2: ch_mad 0 B / 4 B latency and
// 8 MB bandwidth per network.
func BenchmarkTable2Summary(b *testing.B) {
	for _, proto := range []string{"tcp", "sisci", "bip"} {
		proto := proto
		b.Run(proto, func(b *testing.B) {
			var l0, l4, bw float64
			for i := 0; i < b.N; i++ {
				s, err := mpptest.MPIPingPong("ch_mad", cluster.TwoNodes(proto),
					[]int{0, 4, 8 * netsim.MB}, mpptest.Config{Iters: 2})
				if err != nil {
					b.Fatal(err)
				}
				p0, _ := s.At(0)
				p4, _ := s.At(4)
				p8, _ := s.At(8 * netsim.MB)
				l0, l4, bw = p0.LatencyUS(), p4.LatencyUS(), p8.BandwidthMBs()
			}
			b.ReportMetric(l0, "vus/0B")
			b.ReportMetric(l4, "vus/4B")
			b.ReportMetric(bw, "MB/s@8MB")
		})
	}
}

// BenchmarkAblationSwitchPoint regenerates ablation X1: the effect of the
// single elected eager->rendez-vous threshold on the SCI+TCP config.
func BenchmarkAblationSwitchPoint(b *testing.B) {
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationSwitchPoint()
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	for _, s := range res.Series {
		if p, ok := s.At(16 << 10); ok {
			b.ReportMetric(p.BandwidthMBs(), "MB/s16K:"+sanitize(s.Name))
		}
	}
}

// BenchmarkAblationHeaderSplit regenerates ablation X2: the §4.2.2
// header/body split versus the monolithic padded eager buffer.
func BenchmarkAblationHeaderSplit(b *testing.B) {
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationHeaderSplit()
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	for _, s := range res.Series {
		if p, ok := s.At(1 << 10); ok {
			b.ReportMetric(p.LatencyUS(), "vus1K:"+sanitize(s.Name))
		}
	}
}

// BenchmarkForwarding regenerates extension X3: gateway store-and-forward
// across heterogeneous networks versus a direct link.
func BenchmarkForwarding(b *testing.B) {
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Forwarding()
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	for _, s := range res.Series {
		if p, ok := s.At(4); ok {
			b.ReportMetric(p.LatencyUS(), "vus4B:"+sanitize(s.Name))
		}
		if p, ok := s.At(1 << 20); ok {
			b.ReportMetric(p.BandwidthMBs(), "MB/s1M:"+sanitize(s.Name))
		}
	}
}

// BenchmarkHierCollectives regenerates extension X4 (flat versus
// two-level versus ring collectives on the 2x4-rank cluster-of-clusters)
// plus extension X5 (the multi-gateway bridged topology: routed
// collectives, gateway-aware leaders, pipelined relay), its variant
// (the bridged triangle: two-rail striping, adaptive re-routing, bounded
// gateway queues), extension X6 (the per-link device mux vs the
// uniform single-protocol transport on the mixed SCI+BIP+TCP cluster)
// and extension X9 (multi-leader rail-striped collectives vs the
// single-leader two-level baseline on the bridged triangle), and records
// the sweeps to BENCH_collectives.json for the regression gate.
func BenchmarkHierCollectives(b *testing.B) {
	var res, gw, ad, hm, ml *experiments.Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.HierCollectives()
		if err != nil {
			b.Fatal(err)
		}
		res = r
		g, err := experiments.GatewayCollectives()
		if err != nil {
			b.Fatal(err)
		}
		gw = g
		a, err := experiments.AdaptiveMultipath()
		if err != nil {
			b.Fatal(err)
		}
		ad = a
		h, err := experiments.HeteroMux()
		if err != nil {
			b.Fatal(err)
		}
		hm = h
		m, err := experiments.MultiLeader()
		if err != nil {
			b.Fatal(err)
		}
		ml = m
	}
	all := append(append([]*stats.Series{}, res.Series...), gw.Series...)
	all = append(all, ad.Series...)
	all = append(all, hm.Series...)
	all = append(all, ml.Series...)
	for _, s := range all {
		if p, ok := s.At(8); ok {
			b.ReportMetric(p.LatencyUS(), "vus8B:"+sanitize(s.Name))
		}
		if p, ok := s.At(64 << 10); ok {
			b.ReportMetric(p.LatencyUS(), "vus64K:"+sanitize(s.Name))
		}
	}
	writeCollectivesJSON(b, res, gw, ad, hm, ml)
}

// writeCollectivesJSON records the X4 and X5 sweeps next to the benchmark
// so the flat-vs-hierarchical and gateway-routing numbers are versioned
// with the code.
func writeCollectivesJSON(b *testing.B, results ...*experiments.Result) {
	b.Helper()
	type point struct {
		SizeBytes int     `json:"size_bytes"`
		VirtualUS float64 `json:"virtual_us"`
	}
	type series struct {
		Name   string  `json:"name"`
		Points []point `json:"points"`
	}
	out := struct {
		Experiment string   `json:"experiment"`
		Topology   string   `json:"topology"`
		Series     []series `json:"series"`
	}{
		Experiment: "X4 hierarchical collectives + X5 multi-gateway routing + X5 variant adaptive multi-path relay" +
			" + X6 per-link device mux + X9 multi-leader rail-striped collectives",
		Topology: "X4: 2 SCI islands x 4 single-proc nodes, interleaved ranks, TCP backbone" +
			" (_cap series: backbone trunk capped at the TCP rate via netsim.Params.NetworkBandwidth);" +
			" *_gw series (X5): bridged 3-cluster topology, 2 TCP bridges, no common network" +
			" (GwHops_* point values are gateway-relayed message counts, not microseconds);" +
			" Relay_stripe/_single, Adapt_*, AdaptQ_* and RelayQPeakMax (X5 variant): bridged triangle" +
			" with a third TCP side — striping vs single-path relay, adaptive re-plan vs static under a" +
			" loaded bridge (AdaptQ_*/RelayQPeakMax point values are relay queue depths, not microseconds);" +
			" Mux_*/Uniform_* series (X6): 2 dual-proc SCI nodes + 2 dual-proc BIP nodes on a shared TCP" +
			" backbone — per-link device mux (chself/smp/SAN/TCP classes, per-class autotuned switch" +
			" points) vs the uniform single-protocol ch_mad configuration (Topology.Uniform);" +
			" ML_* series (X9): bridged triangle, autotuned sessions — ML_*_multi lets the tuner pick the" +
			" multi-leader 2level-multi algorithms (one co-leader per distinct gateway, shards striped" +
			" across every bridge), ML_*_single forces the single-leader two-level baseline (CollHier)",
	}
	for _, res := range results {
		for _, s := range res.Series {
			sr := series{Name: s.Name}
			for _, p := range s.Points {
				sr.Points = append(sr.Points, point{SizeBytes: p.Size, VirtualUS: p.LatencyUS()})
			}
			out.Series = append(out.Series, sr)
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_collectives.json", append(data, '\n'), 0o644); err != nil {
		b.Logf("could not record BENCH_collectives.json: %v", err)
	}
}

// scaleRouteGraph mirrors the X8 scale machine as a planner graph:
// nClusters SCI islands of perCluster ranks, one gateway per island (the
// island's first rank) on a trunk-capped TCP backbone.
func scaleRouteGraph(nClusters, perCluster int) route.Graph {
	g := route.Graph{Nets: make(map[string]netsim.Params)}
	bb := netsim.FastEthernetTCP()
	bb.NetworkBandwidth = bb.Bandwidth
	g.Nets["bb"] = bb
	for c := 0; c < nClusters; c++ {
		fabric := fmt.Sprintf("cl%03d", c)
		g.Nets[fabric] = netsim.SCISISCI()
		for m := 0; m < perCluster; m++ {
			nets := []string{fabric}
			if m == 0 {
				nets = append(nets, "bb")
			}
			g.NetsOf = append(g.NetsOf, nets)
			g.N++
		}
	}
	return g
}

// scalePlanWorkload drives the resolution pattern a scale session puts on
// a fresh plan: bloc-representative sweeps (leader election), member ->
// leader route installation, and the leader-pair cost scan (backbone
// recalibration).
func scalePlanWorkload(tb testing.TB, plan *route.Plan, nClusters, perCluster int) {
	for bl := 0; bl < plan.BlocCount(); bl++ {
		r := plan.BlocMembers(bl)[0]
		for ob := 0; ob < plan.BlocCount(); ob++ {
			if ob == bl {
				continue
			}
			o := plan.BlocMembers(ob)[0]
			if _, ok := plan.Cost(r, o); !ok {
				tb.Fatalf("unroutable bloc pair %d->%d", bl, ob)
			}
			if plan.Hops(r, o) < 0 {
				tb.Fatalf("no hops for bloc pair %d->%d", bl, ob)
			}
		}
	}
	for c := 0; c < nClusters; c++ {
		leader := c * perCluster
		for m := 1; m < perCluster; m++ {
			if _, _, ok := plan.NextHop(leader+m, leader); !ok {
				tb.Fatalf("member %d cannot reach leader %d", leader+m, leader)
			}
		}
	}
	for a := 0; a < nClusters; a++ {
		for o := 0; o < nClusters; o++ {
			if a == o {
				continue
			}
			if _, ok := plan.Cost(a*perCluster, o*perCluster); !ok {
				tb.Fatalf("unroutable leader pair %d->%d", a, o)
			}
		}
	}
}

// scalePlannerPoint is one machine size's planner cost sample in
// BENCH_scale.json: the full construction+resolution workload (ns, allocs)
// and bare plan construction (ns). The benchcheck growth gate bounds the
// 256->1024 ratios sub-quadratic (quadratic would be 16x).
type scalePlannerPoint struct {
	Ranks            int   `json:"ranks"`
	WorkloadNsPerOp  int64 `json:"workload_ns_per_op"`
	WorkloadBPerOp   int64 `json:"workload_bytes_per_op"`
	WorkloadAllocs   int64 `json:"workload_allocs_per_op"`
	ConstructNsPerOp int64 `json:"construct_ns_per_op"`
}

// measureLoop times fn (hand-rolled, since testing.Benchmark cannot be
// nested inside a running benchmark): it calibrates an iteration count
// off one warm-up run, then reports per-op wall ns and heap allocation
// deltas from runtime.MemStats.
func measureLoop(fn func()) (nsPerOp, bPerOp, allocsPerOp int64) {
	start := time.Now()
	fn() // warm-up, and the calibration sample
	once := time.Since(start)
	iters := 1
	if target := 250 * time.Millisecond; once < target {
		iters = int(target / (once + 1))
		if iters > 200 {
			iters = 200
		}
	}
	// Three rounds, keeping the fastest wall time (the classic noise
	// filter: scheduling hiccups only ever slow a round down). Allocation
	// deltas are deterministic, so the first round's values stand.
	n := int64(iters)
	for round := 0; round < 3; round++ {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start = time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		if ns := elapsed.Nanoseconds() / n; nsPerOp == 0 || ns < nsPerOp {
			nsPerOp = ns
		}
		if round == 0 {
			bPerOp = int64(after.TotalAlloc-before.TotalAlloc) / n
			allocsPerOp = int64(after.Mallocs-before.Mallocs) / n
		}
	}
	return nsPerOp, bPerOp, allocsPerOp
}

// BenchmarkScaleMachine measures the 1000+-rank scaling story (X8): the
// routing planner's cost growth from 256 to 1024 ranks (construction
// alone and construction plus the session resolution workload) and the
// full 1024-rank scale experiment's wall-clock time, recording everything
// to BENCH_scale.json for the benchcheck growth gate.
func BenchmarkScaleMachine(b *testing.B) {
	var planner []scalePlannerPoint
	for _, shape := range []struct{ nc, per int }{{16, 16}, {64, 16}} {
		nc, per := shape.nc, shape.per
		g := scaleRouteGraph(nc, per)
		opts := route.Options{RefBytes: route.DefaultRefBytes, MaxPaths: 1}
		wNs, wB, wAllocs := measureLoop(func() {
			scalePlanWorkload(b, route.ComputeOpts(g, opts), nc, per)
		})
		cNs, _, _ := measureLoop(func() {
			route.ComputeOpts(g, opts)
		})
		planner = append(planner, scalePlannerPoint{
			Ranks:            nc * per,
			WorkloadNsPerOp:  wNs,
			WorkloadBPerOp:   wB,
			WorkloadAllocs:   wAllocs,
			ConstructNsPerOp: cNs,
		})
	}

	b.ResetTimer()
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Scale()
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	wallMs := float64(b.Elapsed().Milliseconds()) / float64(b.N)
	b.ReportMetric(wallMs, "wallms/run")
	// After ResetTimer: it deletes user-reported metrics, so the planner
	// samples are reported here, not inside the measurement loop above.
	for _, p := range planner {
		b.ReportMetric(float64(p.WorkloadNsPerOp), fmt.Sprintf("planner_ns@%d", p.Ranks))
		b.ReportMetric(float64(p.WorkloadBPerOp), fmt.Sprintf("planner_B@%d", p.Ranks))
	}
	writeScaleJSON(b, planner, wallMs, res)
}

// writeScaleJSON records the scale machine's planner growth samples, the
// 1024-rank experiment's wall-clock cost and its (deterministic) simulated
// collective sweeps next to the benchmark for the benchcheck gate. Unlike
// BENCH_collectives.json the wall-clock and ns fields are host-dependent;
// only their growth ratios and a generous wall-clock ceiling are gated.
func writeScaleJSON(b *testing.B, planner []scalePlannerPoint, wallMs float64, res *experiments.Result) {
	b.Helper()
	type point struct {
		SizeBytes int     `json:"size_bytes"`
		VirtualUS float64 `json:"virtual_us"`
	}
	type series struct {
		Name   string  `json:"name"`
		Points []point `json:"points"`
	}
	out := struct {
		Experiment string              `json:"experiment"`
		Topology   string              `json:"topology"`
		Planner    []scalePlannerPoint `json:"planner"`
		RunRanks   int                 `json:"run_ranks"`
		RunWallMs  float64             `json:"run_wall_ms"`
		Series     []series            `json:"series"`
	}{
		Experiment: "X8 scale: hierarchical routing + scheduler hot paths at 1024 ranks",
		Topology: "64 SCI islands x 16 ranks (1024 ranks), one gateway per island on a" +
			" trunk-capped TCP backbone; planner growth sampled at 256 and 1024 ranks" +
			" on the same shape (workload = construction + bloc/leader resolution sweep)",
		Planner:   planner,
		RunRanks:  scaleRanks(res),
		RunWallMs: wallMs,
	}
	for _, s := range res.Series {
		sr := series{Name: s.Name}
		for _, p := range s.Points {
			sr.Points = append(sr.Points, point{SizeBytes: p.Size, VirtualUS: p.LatencyUS()})
		}
		out.Series = append(out.Series, sr)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_scale.json", append(data, '\n'), 0o644); err != nil {
		b.Logf("could not record BENCH_scale.json: %v", err)
	}
}

// scaleRanks parses the rank count out of the scale result title
// ("Scale: N-rank machine ..."), falling back to 1024.
func scaleRanks(res *experiments.Result) int {
	var n int
	if _, err := fmt.Sscanf(res.Title, "Scale: %d-rank", &n); err != nil || n <= 0 {
		return 1024
	}
	return n
}

// BenchmarkBaselineModels exercises the reference-model evaluation (cheap,
// but keeps the comparator curves regenerable from the bench harness too).
func BenchmarkBaselineModels(b *testing.B) {
	sizes := stats.Sizes1B1MB()
	models := []*baselines.ReferenceModel{
		baselines.ScaMPI(), baselines.SCIMPICH(), baselines.MPIGM(), baselines.MPICHPM(),
	}
	for i := 0; i < b.N; i++ {
		for _, m := range models {
			m.Series(sizes)
		}
	}
}
