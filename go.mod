module mpichmad

go 1.24
